"""TimeDelta granularity semantics and its adoption by datasets/loaders."""

import numpy as np
import pytest

from repro.datasets import (
    TGB_TIME_DELTAS,
    TemporalDataset,
    TimeDelta,
    load_jodie_csv,
    load_tgb_npz,
    save_jodie_csv,
    save_tgb_npz,
    wikipedia_like,
)


def tiny(n=6, **kwargs):
    rng = np.random.default_rng(0)
    return TemporalDataset(
        name="t", src=np.arange(n, dtype=np.int64) % 3,
        dst=(np.arange(n, dtype=np.int64) % 3) + 3,
        timestamps=np.arange(n, dtype=np.float64),
        edge_features=rng.normal(size=(n, 4)),
        labels=np.zeros(n), bipartite=False, **kwargs,
    )


class TestTimeDelta:
    def test_metric_conversion(self):
        assert TimeDelta("h").convert("m") == 60.0
        assert TimeDelta("d").convert("h") == 24.0
        assert TimeDelta("m", 15).convert("s") == 900.0
        assert TimeDelta("s").to_seconds() == 1.0
        assert TimeDelta("d", 365).to_seconds() == 365 * 86400.0

    def test_equality_is_by_duration(self):
        assert TimeDelta("m") == TimeDelta("s", 60)
        assert TimeDelta("h") != TimeDelta("m")
        assert hash(TimeDelta("m")) == hash(TimeDelta("s", 60))

    def test_ordered_unit_is_non_metric(self):
        ordered = TimeDelta("r")
        assert ordered.is_ordered
        with pytest.raises(ValueError):
            ordered.to_seconds()
        with pytest.raises(ValueError):
            ordered.convert("s")
        with pytest.raises(ValueError):
            TimeDelta("s").convert(ordered)
        assert ordered.convert(TimeDelta("r")) == 1.0
        assert ordered == TimeDelta("r")

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeDelta("fortnight")
        with pytest.raises(ValueError):
            TimeDelta("s", 0)
        with pytest.raises(ValueError):
            TimeDelta("r", 5)  # ordered admits no multiplier

    def test_from_any(self):
        assert TimeDelta.from_any(None) == TimeDelta("s")
        assert TimeDelta.from_any("h") == TimeDelta("h")
        delta = TimeDelta("m", 5)
        assert TimeDelta.from_any(delta) is delta
        assert TimeDelta.from_any(delta.as_dict()) == delta
        with pytest.raises(TypeError):
            TimeDelta.from_any(3.5)

    def test_tgb_table_names_known_streams(self):
        assert TGB_TIME_DELTAS["tgbl-wiki"] == TimeDelta("s")
        assert TGB_TIME_DELTAS["tgbl-flight"] == TimeDelta("d")
        assert TGB_TIME_DELTAS["tgbn-trade"].to_seconds() == 365 * 86400.0


class TestDatasetAdoption:
    def test_default_is_seconds(self):
        assert tiny().time_delta == TimeDelta("s")
        assert wikipedia_like(scale=0.002).time_delta == TimeDelta("s")

    def test_explicit_granularity_is_kept_and_coerced(self):
        assert tiny(time_delta=TimeDelta("d")).time_delta == TimeDelta("d")
        assert tiny(time_delta="h").time_delta == TimeDelta("h")

    def test_event_times_validation(self):
        times = np.arange(6, dtype=np.float64)
        dataset = tiny(event_times=times - 0.5)
        assert np.array_equal(dataset.event_times, times - 0.5)
        with pytest.raises(ValueError):
            tiny(event_times=times[:3])  # misaligned length
        with pytest.raises(ValueError):
            tiny(event_times=times + 1.0)  # arrives before it happened

    def test_lateness_against_running_watermark(self):
        dataset = tiny(event_times=np.array([0.0, 1.0, 0.5, 3.0, 1.5, 5.0]))
        assert np.array_equal(dataset.lateness(),
                              [0.0, 0.0, 0.5, 0.0, 1.5, 0.0])
        # Without event_times, arrivals are the event times: never late.
        assert np.all(tiny().lateness() == 0.0)


class TestLoaders:
    def test_jodie_roundtrip_carries_time_delta(self, tmp_path):
        dataset = wikipedia_like(scale=0.002)
        path = tmp_path / "wiki.csv"
        save_jodie_csv(dataset, path)
        loaded = load_jodie_csv(path, name="wiki", time_delta="h")
        assert loaded.time_delta == TimeDelta("h")
        assert load_jodie_csv(path).time_delta == TimeDelta("s")

    def test_tgb_roundtrip_resolves_granularity_by_name(self, tmp_path):
        dataset = wikipedia_like(scale=0.002)
        path = tmp_path / "stream.npz"
        save_tgb_npz(dataset, path)
        loaded = load_tgb_npz(path, name="tgbl-flight")
        assert loaded.time_delta == TGB_TIME_DELTAS["tgbl-flight"]
        assert loaded.num_events == dataset.num_events
        assert np.array_equal(loaded.src, dataset.src)
        assert np.array_equal(loaded.timestamps, dataset.timestamps)
        # Unknown names fall back to the JODIE convention (seconds).
        assert load_tgb_npz(path, name="mystery").time_delta == TimeDelta("s")
        # An explicit override beats the name table.
        assert load_tgb_npz(path, name="tgbl-flight",
                            time_delta="m").time_delta == TimeDelta("m")
