"""Hypothesis suite: every generator's stream satisfies its own ScenarioSpec.

The generators *declare* invariants (via :class:`ScenarioSpec`); these
properties prove the declaration against the generated arrays for arbitrary
sizes, seeds and scenario parameters — plus the determinism contract: the
same seed reproduces the stream bit for bit.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.datasets import TemporalDataset
from repro.scenarios import (
    bursty_arrivals,
    concept_drift,
    hub_nodes,
    late_events,
)

seeds = st.integers(min_value=0, max_value=2**16)
sizes = st.integers(min_value=80, max_value=400)

COMMON = dict(max_examples=30, deadline=None)


def assert_valid_stream(dataset: TemporalDataset, spec):
    assert dataset.num_events == spec.num_events
    assert dataset.num_nodes <= spec.num_nodes  # ids drawn from [0, nodes)
    assert np.all(np.diff(dataset.timestamps) >= 0)
    assert np.all(dataset.src != dataset.dst)
    assert np.all((0 <= dataset.src) & (dataset.src < spec.num_nodes))
    assert np.all((0 <= dataset.dst) & (dataset.dst < spec.num_nodes))
    assert dataset.metadata["scenario"] == spec.as_dict()


def assert_bit_identical(pair_a, pair_b):
    a, spec_a = pair_a
    b, spec_b = pair_b
    assert spec_a == spec_b
    assert spec_a.fingerprint() == spec_b.fingerprint()
    for column in ("src", "dst", "timestamps", "labels", "edge_features",
                   "event_times"):
        left, right = getattr(a, column), getattr(b, column)
        if left is None:
            assert right is None
        else:
            assert np.array_equal(left, right)


class TestBursty:
    @settings(**COMMON)
    @given(n=sizes, seed=seeds,
           ratio=st.floats(min_value=2.0, max_value=10.0),
           num_bursts=st.integers(min_value=1, max_value=4))
    def test_declared_peak_mean_ratio_holds(self, n, seed, ratio, num_bursts):
        dataset, spec = bursty_arrivals(
            num_events=n, num_nodes=60, peak_mean_ratio=ratio,
            num_bursts=num_bursts, num_buckets=64, seed=seed)
        assert_valid_stream(dataset, spec)
        width = spec["bucket_width"]
        counts = np.bincount(
            np.minimum((dataset.timestamps / width).astype(int), 63),
            minlength=64)
        assert counts.max() >= spec["peak_mean_ratio"] * counts.mean()
        # At least num_bursts buckets hold a full burst each.
        assert (counts >= spec["events_per_burst"]).sum() >= spec["num_bursts"]
        assert np.all(dataset.timestamps <= spec["timespan"])

    @settings(**COMMON)
    @given(seed=seeds)
    def test_same_seed_bit_identical(self, seed):
        build = lambda: bursty_arrivals(num_events=150, num_nodes=40, seed=seed)
        assert_bit_identical(build(), build())


class TestHubs:
    @settings(**COMMON)
    @given(n=sizes, seed=seeds, num_hubs=st.integers(min_value=1, max_value=3))
    def test_declared_hub_degree_holds(self, n, seed, num_hubs):
        dataset, spec = hub_nodes(num_events=n, num_nodes=80,
                                  num_hubs=num_hubs, seed=seed)
        assert_valid_stream(dataset, spec)
        hubs = spec["hub_nodes"]
        assert len(hubs) == spec["num_hubs"] == num_hubs
        in_degree = np.bincount(dataset.dst, minlength=80)
        for hub in hubs:
            assert in_degree[hub] >= spec["hub_degree"]
        # Hub traffic is interleaved, not a prefix: hub events reach into
        # the second half of the stream.
        positions = np.flatnonzero(np.isin(dataset.dst, hubs))
        assert positions.max() >= n // 2

    @settings(**COMMON)
    @given(seed=seeds)
    def test_same_seed_bit_identical(self, seed):
        build = lambda: hub_nodes(num_events=150, num_nodes=50, seed=seed)
        assert_bit_identical(build(), build())


class TestDrift:
    @settings(**COMMON)
    @given(n=sizes, seed=seeds,
           drift_fraction=st.floats(min_value=0.2, max_value=0.8),
           rate_shift=st.floats(min_value=1.0, max_value=4.0))
    def test_declared_regimes_hold(self, n, seed, drift_fraction, rate_shift):
        dataset, spec = concept_drift(num_events=n, num_nodes=60,
                                      drift_fraction=drift_fraction,
                                      rate_shift=rate_shift, seed=seed)
        assert_valid_stream(dataset, spec)
        pre = dataset.timestamps < spec["drift_time"]
        assert pre.sum() == spec["pre_events"]
        assert (~pre).sum() == spec["post_events"]
        assert dataset.labels[pre].sum() == spec["pre_positives"]
        assert dataset.labels[~pre].sum() == spec["post_positives"]
        # The realised rates match the declaration exactly (exact-count
        # placement), and the drift direction is as declared.
        assert spec["pre_label_rate"] == spec["pre_positives"] / spec["pre_events"]
        assert spec["post_label_rate"] == spec["post_positives"] / spec["post_events"]
        assert spec["pre_label_rate"] <= spec["post_label_rate"]

    @settings(**COMMON)
    @given(seed=seeds)
    def test_same_seed_bit_identical(self, seed):
        build = lambda: concept_drift(num_events=150, num_nodes=40, seed=seed)
        assert_bit_identical(build(), build())


class TestLate:
    @settings(**COMMON)
    @given(n=sizes, seed=seeds,
           max_lateness=st.floats(min_value=0.0, max_value=20000.0),
           late_fraction=st.floats(min_value=0.0, max_value=1.0))
    def test_declared_lateness_bound_holds(self, n, seed, max_lateness,
                                           late_fraction):
        dataset, spec = late_events(num_events=n, num_nodes=60,
                                    max_lateness=max_lateness,
                                    late_fraction=late_fraction, seed=seed)
        assert_valid_stream(dataset, spec)
        assert dataset.event_times is not None
        # Arrival order is the storage order; occurrence times may disorder
        # but never beyond the declared bound.
        lateness = dataset.lateness()
        assert lateness.max(initial=0.0) <= spec["max_lateness"]
        assert lateness.max(initial=0.0) == spec["max_observed_lateness"]
        assert (lateness > 0).sum() == spec["num_late"]
        assert np.all(dataset.event_times <= dataset.timestamps)

    @settings(**COMMON)
    @given(seed=seeds)
    def test_same_seed_bit_identical(self, seed):
        build = lambda: late_events(num_events=150, num_nodes=40, seed=seed)
        assert_bit_identical(build(), build())

    def test_zero_lateness_degenerates_to_in_order(self):
        dataset, spec = late_events(num_events=100, num_nodes=20,
                                    max_lateness=0.0, seed=3)
        assert spec["num_late"] == 0
        assert np.array_equal(dataset.event_times, dataset.timestamps)
