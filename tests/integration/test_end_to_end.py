"""Integration tests: full training/evaluation runs across the module stack.

These tests exercise the same code paths the benchmark harness uses, on very
small synthetic datasets, and assert the qualitative relationships the paper
reports (dynamic > static at future link prediction, APAN's latency advantage,
APAN's batch-size robustness).
"""

import numpy as np
import pytest

from repro.baselines import DeepWalk, JODIE, TGN, evaluate_static_link_prediction
from repro.core import APAN, APANConfig, LinkPredictionTrainer, explain_node
from repro.datasets import bipartite_interaction_dataset, compute_statistics
from repro.eval import (
    evaluate_link_prediction,
    evaluate_node_classification,
    measure_inference_latency,
)
from repro.serving import DeploymentSimulator, StorageLatencyModel


@pytest.fixture(scope="module")
def medium_dataset():
    return bipartite_interaction_dataset(
        name="integration", num_users=60, num_items=25, num_events=900,
        edge_feature_dim=24, repeat_probability=0.75, label_rate=0.01, seed=11,
    )


@pytest.fixture(scope="module")
def medium_split(medium_dataset):
    return medium_dataset.split()


@pytest.fixture(scope="module")
def trained_apan(medium_dataset, medium_split):
    graph = medium_dataset.to_temporal_graph()
    model = APAN(medium_dataset.num_nodes, medium_dataset.edge_feature_dim,
                 APANConfig(num_mailbox_slots=6, num_neighbors=6, mlp_hidden_dim=32,
                            dropout=0.0, learning_rate=2e-3, seed=0))
    trainer = LinkPredictionTrainer(model, graph, medium_split.train_end,
                                    medium_split.val_end, batch_size=50,
                                    learning_rate=2e-3, max_epochs=6, patience=6, seed=0)
    result = trainer.fit()
    return model, result, graph


class TestAPANEndToEnd:
    def test_training_reaches_reasonable_ap(self, trained_apan):
        _, result, _ = trained_apan
        assert result.best_val.average_precision > 0.70
        assert result.test_at_best.average_precision > 0.65

    def test_downstream_node_classification_runs(self, trained_apan, medium_dataset,
                                                 medium_split):
        model, _, _ = trained_apan
        outcome = evaluate_node_classification(model, medium_dataset, medium_split,
                                               epochs=5, batch_size=100)
        assert 0.0 <= outcome.test_auc <= 1.0

    def test_interpretability_after_training(self, trained_apan, medium_dataset):
        model, _, graph = trained_apan
        occupancy = model.mailbox.occupancy()
        node = int(np.argmax(occupancy))
        attributions = explain_node(model, node, time=float(graph.timestamps[-1]) + 1.0)
        assert len(attributions) >= 1
        assert abs(sum(a.weight for a in attributions) - 1.0) < 1e-6

    def test_apan_beats_static_deepwalk(self, trained_apan, medium_dataset, medium_split):
        """The paper's central accuracy claim: dynamic models beat static embeddings."""
        _, apan_result, _ = trained_apan
        deepwalk = DeepWalk(seed=0).fit(medium_dataset, medium_split)
        static_result = evaluate_static_link_prediction(deepwalk, medium_dataset,
                                                        medium_split, batch_size=100)
        assert apan_result.best_val.average_precision > static_result.average_precision


class TestLatencyRelationships:
    def test_apan_inference_faster_than_tgn(self, medium_dataset):
        """Figure 6's headline: APAN's critical path is several times cheaper."""
        graph = medium_dataset.to_temporal_graph()
        apan = APAN(medium_dataset.num_nodes, medium_dataset.edge_feature_dim,
                    APANConfig(num_mailbox_slots=6, num_neighbors=6,
                               mlp_hidden_dim=32, seed=0))
        tgn = TGN(medium_dataset.num_nodes, medium_dataset.edge_feature_dim,
                  num_layers=1, num_neighbors=6, seed=0)
        apan_latency = measure_inference_latency(apan, graph, batch_size=100, max_batches=4)
        tgn_latency = measure_inference_latency(tgn, graph, batch_size=100, max_batches=4)
        assert apan_latency.mean_ms < tgn_latency.mean_ms

    def test_apan_latency_flat_in_propagation_hops(self, medium_dataset):
        """Figure 6: APAN-1layer and APAN-2layers have ~the same inference latency."""
        graph = medium_dataset.to_temporal_graph()
        latencies = []
        for hops in (1, 2):
            model = APAN(medium_dataset.num_nodes, medium_dataset.edge_feature_dim,
                         APANConfig(num_mailbox_slots=6, num_neighbors=6,
                                    mlp_hidden_dim=32, num_hops=hops, seed=0))
            latencies.append(measure_inference_latency(model, graph, batch_size=100,
                                                       max_batches=4).mean_ms)
        # Within 60% of each other (they share an identical critical path).
        assert latencies[1] < latencies[0] * 1.6

    def test_serving_simulation_shows_async_advantage(self, medium_dataset):
        graph = medium_dataset.to_temporal_graph()
        storage = StorageLatencyModel(graph_query_ms=8.0, kv_read_ms=0.4, jitter=0.0, seed=0)
        apan = APAN(medium_dataset.num_nodes, medium_dataset.edge_feature_dim,
                    APANConfig(num_mailbox_slots=6, num_neighbors=6,
                               mlp_hidden_dim=32, seed=0))
        tgn = TGN(medium_dataset.num_nodes, medium_dataset.edge_feature_dim,
                  num_layers=1, num_neighbors=6, seed=0)
        apan_report = DeploymentSimulator(apan, graph, storage=storage,
                                          batch_size=100).run(max_batches=4)
        tgn_report = DeploymentSimulator(tgn, graph, storage=storage,
                                         batch_size=100).run(max_batches=4)
        assert apan_report.mean_decision_ms < tgn_report.mean_decision_ms


class TestBaselineTrainingIntegration:
    def test_jodie_trains_with_shared_trainer(self, medium_dataset, medium_split):
        graph = medium_dataset.to_temporal_graph()
        model = JODIE(medium_dataset.num_nodes, medium_dataset.edge_feature_dim, seed=0)
        trainer = LinkPredictionTrainer(model, graph, medium_split.train_end,
                                        medium_split.val_end, batch_size=100,
                                        learning_rate=1e-3, max_epochs=1, patience=2)
        result = trainer.fit()
        assert 0.0 <= result.best_val.average_precision <= 1.0

    def test_dataset_statistics_consistent_with_split(self, medium_dataset, medium_split):
        stats = compute_statistics(medium_dataset)
        assert stats.nodes_in_train == len(medium_split.train_nodes)
        assert stats.unseen_nodes_in_eval == len(medium_split.unseen_eval_nodes)

    def test_evaluation_is_reproducible(self, medium_dataset, medium_split):
        graph = medium_dataset.to_temporal_graph()

        def run():
            model = APAN(medium_dataset.num_nodes, medium_dataset.edge_feature_dim,
                         APANConfig(num_mailbox_slots=4, num_neighbors=4,
                                    mlp_hidden_dim=16, dropout=0.0, seed=5))
            model.reset_state()
            return evaluate_link_prediction(model, graph, 0, medium_split.train_end,
                                            batch_size=100, seed=9).average_precision

        assert run() == pytest.approx(run())
