"""Setuptools shim so `pip install -e .` works without network access.

The canonical metadata lives in pyproject.toml; this file only enables the
legacy editable-install path on environments that lack the `wheel` package.
"""
from setuptools import setup

setup()
