"""Propagation engine throughput: vectorized vs. reference.

The vectorized engine is the tentpole of the "make the asynchronous half
fast" work: it replaces the per-event, per-neighbor Python routing loop with
whole-frontier array ops.  This benchmark streams a synthetic 10k-event
workload through both engines with the paper-default propagation settings
(2 hops, 10 neighbours, 10 slots, batch 200) and asserts the speedup floor
that future PRs must not regress below.  The measured numbers are written to
``BENCH_propagation.json`` at the repo root so the perf trajectory is
recorded alongside the code (see ``make bench``).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.mailbox import Mailbox
from repro.core.propagator import MailPropagator
from repro.graph.batching import EventBatch

from .harness import write_bench_record

NUM_EVENTS = 10_000
NUM_NODES = 2_000
FEATURE_DIM = 16
BATCH_SIZE = 200
# Measured locally: reference ~16k events/s, vectorized ~76k events/s (~4.8x).
# The floor is deliberately below the measured ratio so CI noise cannot flake,
# while still failing if the fast path ever degenerates to per-event work.
MIN_SPEEDUP = 3.0

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_propagation.json"


def synthetic_batches(seed: int = 0):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, NUM_NODES, NUM_EVENTS).astype(np.int64)
    dst = rng.integers(0, NUM_NODES, NUM_EVENTS).astype(np.int64)
    timestamps = np.sort(rng.uniform(0.0, 10_000.0, NUM_EVENTS))
    features = rng.normal(size=(NUM_EVENTS, FEATURE_DIM))
    batches = []
    for begin in range(0, NUM_EVENTS, BATCH_SIZE):
        stop = begin + BATCH_SIZE
        batches.append(EventBatch(
            src=src[begin:stop], dst=dst[begin:stop],
            timestamps=timestamps[begin:stop],
            edge_features=features[begin:stop],
            labels=np.zeros(stop - begin),
            edge_ids=np.arange(begin, stop),
        ))
    return batches


def measure_events_per_second(engine: str) -> float:
    mailbox = Mailbox(NUM_NODES, 10, FEATURE_DIM)
    propagator = MailPropagator(mailbox, NUM_NODES, FEATURE_DIM, num_hops=2,
                                num_neighbors=10, seed=0, engine=engine)
    rng = np.random.default_rng(1)
    batches = synthetic_batches()
    embeddings = [rng.normal(size=(len(batch), FEATURE_DIM)) for batch in batches]
    begin = time.perf_counter()
    for batch, z in zip(batches, embeddings):
        propagator.propagate(batch, z, z)
    elapsed = time.perf_counter() - begin
    return NUM_EVENTS / elapsed


@pytest.fixture(scope="module")
def throughput():
    return {engine: measure_events_per_second(engine)
            for engine in ("reference", "vectorized")}


def test_propagation_throughput(throughput):
    reference = throughput["reference"]
    vectorized = throughput["vectorized"]
    speedup = vectorized / reference
    record = {
        "workload": {
            "num_events": NUM_EVENTS, "num_nodes": NUM_NODES,
            "feature_dim": FEATURE_DIM, "batch_size": BATCH_SIZE,
            "num_hops": 2, "num_neighbors": 10, "num_slots": 10,
        },
        "reference_events_per_sec": round(reference, 1),
        "vectorized_events_per_sec": round(vectorized, 1),
        "speedup": round(speedup, 2),
        "min_speedup_asserted": MIN_SPEEDUP,
    }
    write_bench_record(_RESULT_PATH, record)
    print(f"\nreference:  {reference:10,.0f} events/s")
    print(f"vectorized: {vectorized:10,.0f} events/s  ({speedup:.1f}x)")
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized engine is only {speedup:.2f}x the reference "
        f"(floor {MIN_SPEEDUP}x) — the fast path has regressed"
    )
