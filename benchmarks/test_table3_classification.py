"""Table 3 — dynamic node classification (Wikipedia, Reddit) and edge
classification (Alipay), ROC-AUC.

The models are first trained self-supervised on link prediction, then frozen;
a small MLP decoder is trained on the training-window events and evaluated on
the later windows (the TGAT/TGN/APAN protocol).

At benchmark scale the published label sparsity (~0.1%) would leave only a
couple of positive examples, so the label rate of the synthetic generators is
raised (documented substitution, see DESIGN.md) — the *task structure*
(dynamic labels caused by latent misbehaviour visible in edge features) is
unchanged.

Shape expectations: dynamic models' AUC is clearly above 0.5 (the labels are
learnable from the stream) and APAN is competitive with TGN.
"""

import pytest

from repro.baselines import DeepWalk, GraphSAGEBaseline
from repro.datasets import alipay_like, bipartite_interaction_dataset
from repro.utils import format_table

from .harness import (
    BATCH_SIZE,
    SEED,
    dynamic_model_zoo,
    edge_classification_auc,
    node_classification_auc,
    percent,
    static_node_classification_auc,
    train_dynamic_model,
)

# Dynamic methods compared in Table 3 (a representative subset of the zoo to
# keep the harness fast; the full zoo can be enabled by editing this list).
DYNAMIC_SUBSET = ("JODIE", "TGN", "APAN")


@pytest.fixture(scope="module")
def node_classification_datasets():
    wikipedia = bipartite_interaction_dataset(
        name="wikipedia", num_users=80, num_items=12, num_events=1500,
        edge_feature_dim=64, repeat_probability=0.70, label_rate=0.03,
        cold_start_fraction=0.20, seed=SEED,
    )
    reddit = bipartite_interaction_dataset(
        name="reddit", num_users=60, num_items=10, num_events=2000,
        edge_feature_dim=64, repeat_probability=0.75, label_rate=0.03,
        cold_start_fraction=0.02, seed=SEED + 1,
    )
    return {"wikipedia": wikipedia, "reddit": reddit}


@pytest.fixture(scope="module")
def edge_classification_dataset():
    return alipay_like(scale=0.0008, seed=SEED, fraud_rate=0.03)


@pytest.fixture(scope="module")
def table3_results(node_classification_datasets, edge_classification_dataset):
    results: dict[str, dict[str, float]] = {}

    # Node classification on the Wikipedia/Reddit stand-ins.
    for dataset_name, dataset in node_classification_datasets.items():
        per_method: dict[str, float] = {}
        per_method["SAGE"] = static_node_classification_auc(
            GraphSAGEBaseline(epochs=15, seed=SEED).fit(dataset, dataset.split()), dataset)
        per_method["DeepWalk"] = static_node_classification_auc(
            DeepWalk(seed=SEED).fit(dataset, dataset.split()), dataset)
        zoo = dynamic_model_zoo(dataset)
        for name in DYNAMIC_SUBSET:
            run = train_dynamic_model(name, zoo[name], dataset, epochs=4)
            per_method[name] = node_classification_auc(run.model, dataset)
        results[dataset_name] = per_method

    # Edge classification on the Alipay stand-in.
    per_method = {}
    zoo = dynamic_model_zoo(edge_classification_dataset)
    for name in DYNAMIC_SUBSET:
        run = train_dynamic_model(name, zoo[name], edge_classification_dataset, epochs=3)
        per_method[name] = edge_classification_auc(run.model, edge_classification_dataset)
    results["alipay"] = per_method
    return results


def test_table3_classification(table3_results, benchmark):
    benchmark.pedantic(lambda: table3_results, rounds=1, iterations=1)

    methods = sorted({m for per in table3_results.values() for m in per})
    rows = []
    for method in methods:
        row = {"Method": method}
        for dataset_name in ("wikipedia", "reddit", "alipay"):
            auc = table3_results[dataset_name].get(method)
            row[f"{dataset_name} AUC (%)"] = percent(auc) if auc is not None else "\\"
        rows.append(row)
    print("\n=== Table 3: node / edge classification AUC "
          "(benchmark-scale synthetic stand-ins) ===")
    print(format_table(rows))

    for dataset_name in ("wikipedia", "reddit"):
        apan_auc = table3_results[dataset_name]["APAN"]
        tgn_auc = table3_results[dataset_name]["TGN"]
        # The dynamic labels are learnable from the stream.
        assert apan_auc > 0.55, f"APAN node-classification AUC too low on {dataset_name}"
        # APAN is competitive with TGN (paper: APAN wins Wikipedia, TGN wins
        # Reddit).  The bench-scale eval windows contain only a handful of
        # positive labels, so per-method AUCs are noisy — the margin is wide.
        assert apan_auc > tgn_auc - 0.30

    apan_edge_auc = table3_results["alipay"]["APAN"]
    assert apan_edge_auc > 0.6, "fraud-transaction signal should be learnable"
