"""Benchmark harness reproducing the paper's tables and figures.

Making this directory a package lets ``python -m pytest`` collect the
benchmark modules (which use relative imports of :mod:`benchmarks.harness`)
from a clean checkout without any ``PYTHONPATH`` incantation.
"""
