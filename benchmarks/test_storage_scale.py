"""Storage subsystem at scale: 10M-event append + slice throughput, peak RSS.

The tentpole claim of the storage split is that a 1M-node / 10M-event stream
builds through :class:`~repro.storage.EventStore` / `GraphView` with *no
per-event Python objects* — appends are chunked array copies into an
mmap-backed columnar store, and the only resident index is one shard's CSR.
This benchmark runs that workload in a fresh subprocess (so ``ru_maxrss`` is
the workload's own peak, not the test session's), asserts the peak RSS stays
under a CI-enforced ceiling, and records append/slice/query throughput in
``BENCH_storage.json`` at the repo root (see ``make bench-storage``).

Environment knobs::

    STORAGE_BENCH_EVENTS   stream length        (default 10_000_000)
    STORAGE_BENCH_NODES    node-id space        (default 1_000_000)
    STORAGE_BENCH_RSS_MB   peak-RSS ceiling     (default 2048)
"""

from __future__ import annotations

import multiprocessing as mp
import os
import resource
import tempfile
import time
from pathlib import Path

import numpy as np

from .harness import write_bench_record

NUM_EVENTS = int(os.environ.get("STORAGE_BENCH_EVENTS", 10_000_000))
NUM_NODES = int(os.environ.get("STORAGE_BENCH_NODES", 1_000_000))
RSS_CEILING_MB = float(os.environ.get("STORAGE_BENCH_RSS_MB", 2048))
FEATURE_DIM = 4
CHUNK = 100_000
NUM_SHARDS = 8
NUM_SLICE_QUERIES = 2_000
NUM_NODE_QUERIES = 2_000

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_storage.json"


def _workload(store_dir: str, result_queue) -> None:
    """Runs in a fresh subprocess; reports its own peak RSS."""
    from repro.storage import EventStore, GraphView, ShardMap

    store = EventStore.create_mmap(store_dir, num_nodes=NUM_NODES,
                                   edge_feature_dim=FEATURE_DIM,
                                   capacity=NUM_EVENTS)
    shard_map = ShardMap(NUM_NODES, num_shards=NUM_SHARDS)
    # A sharded serving worker's resident state: one shard's CSR index over
    # the shared store; the event columns themselves stay on disk.
    shard_view = GraphView(store, 0, 0).for_shard(shard_map, shard=0)

    # ---- chunked append (no per-event Python objects) ------------------ #
    rng = np.random.default_rng(0)
    t = 0.0
    append_begin = time.perf_counter()
    for start in range(0, NUM_EVENTS, CHUNK):
        size = min(CHUNK, NUM_EVENTS - start)
        timestamps = np.sort(rng.uniform(t, t + 100.0, size))
        t = float(timestamps[-1])
        store.append_batch(
            rng.integers(0, NUM_NODES, size),
            rng.integers(0, NUM_NODES, size),
            timestamps,
            rng.normal(size=(size, FEATURE_DIM)),
        )
        # Fold the chunk into the shard's CSR as a serving worker would.
        shard_view.extend_to(store.num_events)
        shard_view.csr_view()
    append_elapsed = time.perf_counter() - append_begin
    assert store.num_events == NUM_EVENTS

    # ---- zero-copy time slicing ---------------------------------------- #
    full_view = GraphView(store)
    last_time = store.last_timestamp
    slice_starts = rng.uniform(0.0, last_time * 0.9, NUM_SLICE_QUERIES)
    slice_begin = time.perf_counter()
    sliced_events = 0
    for start_time in slice_starts:
        window = full_view.slice_time(start_time, start_time + last_time * 0.01)
        sliced_events += window.num_events
    slice_elapsed = time.perf_counter() - slice_begin

    # ---- per-node temporal queries against the shard CSR --------------- #
    shard_nodes = shard_map.nodes_of(0)
    query_nodes = rng.choice(shard_nodes, NUM_NODE_QUERIES)
    query_times = rng.uniform(0.0, last_time, NUM_NODE_QUERIES)
    query_begin = time.perf_counter()
    touched = 0
    for node, before in zip(query_nodes, query_times):
        neighbors, _, _ = shard_view.node_events(int(node), before=float(before))
        touched += len(neighbors)
    query_elapsed = time.perf_counter() - query_begin

    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    result_queue.put({
        "append_events_per_sec": NUM_EVENTS / append_elapsed,
        "append_elapsed_s": append_elapsed,
        "slice_ops_per_sec": NUM_SLICE_QUERIES / slice_elapsed,
        "sliced_events_total": int(sliced_events),
        "node_queries_per_sec": NUM_NODE_QUERIES / query_elapsed,
        "neighbors_touched": int(touched),
        "peak_rss_mb": peak_rss_mb,
        "shard_csr_mb": shard_view._index.memory_footprint_bytes() / 2**20,
        "store_disk_mb": store.memory_footprint_bytes() / 2**20,
    })


def test_storage_scale():
    # spawn: the child starts from a clean interpreter, so ru_maxrss measures
    # the storage workload alone, not the inherited test-session footprint.
    ctx = mp.get_context("spawn" if "spawn" in mp.get_all_start_methods()
                         else "fork")
    with tempfile.TemporaryDirectory(prefix="storage-bench-") as store_dir:
        result_queue = ctx.Queue()
        proc = ctx.Process(target=_workload, args=(store_dir, result_queue))
        proc.start()
        try:
            metrics = result_queue.get(timeout=1800)
        finally:
            proc.join(timeout=60)
    assert proc.exitcode == 0

    record = {
        "workload": {
            "num_events": NUM_EVENTS, "num_nodes": NUM_NODES,
            "feature_dim": FEATURE_DIM, "append_chunk": CHUNK,
            "num_shards": NUM_SHARDS,
        },
        "append_events_per_sec": round(metrics["append_events_per_sec"], 1),
        "append_elapsed_s": round(metrics["append_elapsed_s"], 2),
        "slice_ops_per_sec": round(metrics["slice_ops_per_sec"], 1),
        "node_queries_per_sec": round(metrics["node_queries_per_sec"], 1),
        "peak_rss_mb": round(metrics["peak_rss_mb"], 1),
        "rss_ceiling_mb": RSS_CEILING_MB,
        "shard_csr_mb": round(metrics["shard_csr_mb"], 1),
        "store_disk_mb": round(metrics["store_disk_mb"], 1),
    }
    write_bench_record(_RESULT_PATH, record)
    print(f"\nappend: {record['append_events_per_sec']:12,.0f} events/s "
          f"({record['append_elapsed_s']}s for {NUM_EVENTS:,})")
    print(f"slice:  {record['slice_ops_per_sec']:12,.0f} ops/s")
    print(f"query:  {record['node_queries_per_sec']:12,.0f} node histories/s")
    print(f"peak RSS {record['peak_rss_mb']:.0f} MB "
          f"(ceiling {RSS_CEILING_MB:.0f} MB); "
          f"shard CSR {record['shard_csr_mb']:.0f} MB; "
          f"store on disk {record['store_disk_mb']:.0f} MB")

    assert metrics["peak_rss_mb"] < RSS_CEILING_MB, (
        f"peak RSS {metrics['peak_rss_mb']:.0f} MB exceeds the "
        f"{RSS_CEILING_MB:.0f} MB ceiling — the build path is holding "
        f"per-event state in memory instead of streaming through the store"
    )
