"""Figure 2 / §4.6 — online-deployment simulation: synchronous vs asynchronous.

The paper motivates APAN with a deployment argument (Figure 2): in a real
platform the temporal graph lives in a distributed graph database, so every
neighbour query on the decision path costs a storage round-trip, and the
asynchronous design removes those round-trips entirely.  This benchmark runs
the deployment simulator with a storage latency model and reports the
end-to-end decision latency of:

* APAN served asynchronously (mailbox reads from a key-value store, mail
  propagation on a background queue);
* APAN with its propagation forced onto the critical path (ablation);
* TGN served synchronously (graph-database neighbour queries on the path).
"""

import pytest

from repro.baselines import TGN
from repro.serving import DeploymentSimulator, StorageLatencyModel
from repro.utils import format_table

from .harness import BATCH_SIZE, SEED, bench_dataset, make_apan


@pytest.fixture(scope="module")
def serving_reports():
    dataset = bench_dataset("wikipedia")
    graph = dataset.to_temporal_graph()

    def storage():
        return StorageLatencyModel(graph_query_ms=8.0, kv_read_ms=0.4,
                                   jitter=0.1, seed=SEED)

    apan_async = DeploymentSimulator(make_apan(dataset), graph, storage=storage(),
                                     batch_size=BATCH_SIZE).run(max_batches=10,
                                                                synchronous=False)
    apan_sync = DeploymentSimulator(make_apan(dataset), graph, storage=storage(),
                                    batch_size=BATCH_SIZE).run(max_batches=10,
                                                               synchronous=True)
    tgn_model = TGN(dataset.num_nodes, dataset.edge_feature_dim, num_layers=1,
                    num_neighbors=10, seed=SEED)
    tgn_sync = DeploymentSimulator(tgn_model, graph, storage=storage(),
                                   batch_size=BATCH_SIZE).run(max_batches=10)
    return {
        "APAN (asynchronous deployment)": apan_async,
        "APAN (propagation forced sync)": apan_sync,
        "TGN (synchronous deployment)": tgn_sync,
    }


def test_fig2_serving_simulation(serving_reports, benchmark):
    benchmark.pedantic(lambda: serving_reports, rounds=1, iterations=1)

    rows = [
        {"Deployment": name, "mean ms": report.mean_decision_ms,
         "p95 ms": report.p95_decision_ms, "p99 ms": report.p99_decision_ms,
         "async lag ms": report.mean_async_lag_ms}
        for name, report in serving_reports.items()
    ]
    print("\n=== Figure 2 / §4.6: simulated online decision latency per batch ===")
    print(format_table(rows))

    apan_async = serving_reports["APAN (asynchronous deployment)"]
    apan_sync = serving_reports["APAN (propagation forced sync)"]
    tgn_sync = serving_reports["TGN (synchronous deployment)"]

    # The asynchronous deployment is the whole point: decisions are much
    # cheaper than any synchronous alternative.
    assert apan_async.mean_decision_ms < apan_sync.mean_decision_ms
    assert apan_async.mean_decision_ms < tgn_sync.mean_decision_ms
    assert apan_async.p99_decision_ms < tgn_sync.p99_decision_ms
    # The asynchronous queue keeps up: propagation lag stays bounded.
    assert apan_async.mean_async_lag_ms < 100 * apan_async.mean_decision_ms
