"""Figure 7 — training time (seconds per epoch) versus AP.

Regenerates the training-speed axis of Figure 7: seconds per training epoch
for APAN, TGN, TGAT (1/2 layers), JODIE and DyRep on the Wikipedia-like
dataset.

Shape expectations: in the *training* phase APAN has no asynchronous advantage
— it performs the same amount of work as the other CTDG models — so its epoch
time is comparable to TGN-1layer (the paper: "APAN has almost the same testing
result and speed as TGN"), and far below the 2-layer synchronous models.
"""

import pytest

from repro.baselines import JODIE, TGAT, TGN
from repro.eval import measure_training_time
from repro.utils import format_table

from .harness import BATCH_SIZE, SEED, bench_dataset, make_apan


@pytest.fixture(scope="module")
def training_time_results():
    dataset = bench_dataset("wikipedia")
    graph = dataset.to_temporal_graph()
    split = dataset.split()
    # Time a fixed prefix of the training window; relative epoch costs are
    # what Figure 7 compares, and the prefix keeps the harness fast.
    stop = min(400, split.train_end)
    n, d = dataset.num_nodes, dataset.edge_feature_dim
    models = {
        "APAN-2layers": make_apan(dataset, num_hops=2),
        "JODIE": JODIE(n, d, seed=SEED),
        "TGN-1layer": TGN(n, d, num_layers=1, num_neighbors=10, seed=SEED),
        "TGN-2layers": TGN(n, d, num_layers=2, num_neighbors=10, seed=SEED),
        "TGAT-1layer": TGAT(n, d, num_layers=1, num_neighbors=10, seed=SEED),
        "TGAT-2layers": TGAT(n, d, num_layers=2, num_neighbors=10, seed=SEED),
    }
    return {
        name: measure_training_time(model, graph, batch_size=BATCH_SIZE,
                                    stop=stop, seed=SEED)
        for name, model in models.items()
    }


def test_fig7_training_time(training_time_results, benchmark):
    benchmark.pedantic(lambda: training_time_results, rounds=1, iterations=1)

    rows = [{"Model": name, "seconds/epoch": seconds}
            for name, seconds in sorted(training_time_results.items(),
                                        key=lambda item: item[1])]
    print("\n=== Figure 7: training time per epoch (Wikipedia-like) ===")
    print(format_table(rows, float_format="{:.3f}"))

    apan = training_time_results["APAN-2layers"]
    tgn1 = training_time_results["TGN-1layer"]
    tgat2 = training_time_results["TGAT-2layers"]

    # APAN's training cost is in the same ballpark as TGN-1layer (within ~3x at
    # this scale — the propagator's Python-loop routing is its main overhead),
    # and clearly below the 2-layer synchronous models.
    assert apan < tgn1 * 3.0
    assert apan < tgat2
    # Two-layer synchronous models are the slowest to train.
    assert tgat2 > training_time_results["TGAT-1layer"]
