"""Real-runtime serving benchmark: async decision latency vs. forced sync.

The paper's deployment claim (§3.1, Figure 2) is that putting mail
propagation on an asynchronous link takes it off the decision path.  The
simulated benchmark (``test_fig2_serving_simulation.py``) models that with a
deterministic queue; this one *runs* it, streaming a sustained-rate stream
through the real multi-process runtime (`repro.serving.runtime`) and through
the same model with propagation forced onto the critical path.  Both modes
use a zero-cost storage model so the comparison is pure measured wall time.

Asserted floor: the async runtime's p99 decision latency must beat the
synchronous p99 on the same stream.  Results (latency percentiles, mailbox
staleness, backlog high-water mark) are written to ``BENCH_serving.json`` at
the repo root so the perf trajectory is recorded alongside the code (see
``make bench-serving``).  ``SERVING_BENCH_EVENTS`` scales the stream
(default 10k events — the CI size; use 100k+ for a local soak).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.core import APAN, APANConfig
from repro.datasets import bipartite_interaction_dataset
from repro.serving import DeploymentSimulator, RuntimeConfig, StorageLatencyModel

from .harness import write_bench_record

NUM_EVENTS = int(os.environ.get("SERVING_BENCH_EVENTS", "10000"))
BATCH_SIZE = 100
NUM_WORKERS = 2
MAX_BACKLOG = 4

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


@pytest.fixture(scope="module")
def reports():
    dataset = bipartite_interaction_dataset(
        name="serving-bench", num_users=NUM_EVENTS // 8, num_items=NUM_EVENTS // 16,
        num_events=NUM_EVENTS, edge_feature_dim=16, seed=11,
    )
    graph = dataset.to_temporal_graph()
    model = APAN(dataset.num_nodes, dataset.edge_feature_dim,
                 APANConfig(seed=0, dropout=0.0))
    storage = StorageLatencyModel(graph_query_ms=0.0, kv_read_ms=0.0,
                                  jitter=0.0, seed=0)
    simulator = DeploymentSimulator(model, graph, storage=storage,
                                    batch_size=BATCH_SIZE)
    out = {}
    for mode in ("synchronous", "asynchronous-real"):
        model.reset_state()
        begin = time.perf_counter()
        out[mode] = simulator.run(
            mode=mode,
            runtime_config=RuntimeConfig(num_workers=NUM_WORKERS,
                                         max_backlog=MAX_BACKLOG,
                                         worker_nice=19),
        )
        out[mode + "/wall_s"] = time.perf_counter() - begin
    return out


def test_async_runtime_beats_synchronous_p99(reports):
    sync = reports["synchronous"]
    real = reports["asynchronous-real"]
    record = {
        "workload": {
            "num_events": NUM_EVENTS, "batch_size": BATCH_SIZE,
            "num_workers": NUM_WORKERS, "max_backlog": MAX_BACKLOG,
        },
        "synchronous": {
            "p50_decision_ms": round(sync.p50_decision_ms, 3),
            "p95_decision_ms": round(sync.p95_decision_ms, 3),
            "p99_decision_ms": round(sync.p99_decision_ms, 3),
            "mean_decision_ms": round(sync.mean_decision_ms, 3),
            "wall_s": round(reports["synchronous/wall_s"], 2),
        },
        "asynchronous_real": {
            "p50_decision_ms": round(real.p50_decision_ms, 3),
            "p95_decision_ms": round(real.p95_decision_ms, 3),
            "p99_decision_ms": round(real.p99_decision_ms, 3),
            "mean_decision_ms": round(real.mean_decision_ms, 3),
            "mean_staleness_ms": round(real.mean_staleness_ms, 3),
            "max_staleness_ms": round(real.max_staleness_ms, 3),
            "max_backlog": real.max_backlog,
            "wall_s": round(reports["asynchronous-real/wall_s"], 2),
        },
        "p99_speedup": round(sync.p99_decision_ms / real.p99_decision_ms, 2),
    }
    write_bench_record(_RESULT_PATH, record)
    print(f"\nsynchronous:  p50={sync.p50_decision_ms:6.2f}  "
          f"p99={sync.p99_decision_ms:6.2f} ms")
    print(f"async (real): p50={real.p50_decision_ms:6.2f}  "
          f"p99={real.p99_decision_ms:6.2f} ms  "
          f"staleness mean/max={real.mean_staleness_ms:.1f}/"
          f"{real.max_staleness_ms:.1f} ms  backlog<={real.max_backlog}")

    assert real.max_backlog <= MAX_BACKLOG, (
        f"backlog {real.max_backlog} exceeded the configured bound {MAX_BACKLOG}"
    )
    assert real.p99_decision_ms < sync.p99_decision_ms, (
        f"async runtime p99 ({real.p99_decision_ms:.2f} ms) is not below the "
        f"synchronous p99 ({sync.p99_decision_ms:.2f} ms) — propagation has "
        f"leaked back onto the decision path"
    )
