"""Ablations over APAN's design choices (the knobs DESIGN.md calls out).

The paper (§3.5/§3.6) describes each component of the asynchronous framework
as replaceable.  This benchmark sweeps the concrete choices implemented in
this repository and prints their link-prediction AP on the Wikipedia-like
dataset, so the defaults the paper chose can be compared against the
alternatives:

* mail generation φ: sum (default) vs concat+projection,
* mail reduction ρ: mean (default) vs last vs max,
* neighbour sampling: most-recent (default) vs uniform vs time-weighted,
* mailbox update ψ: FIFO (default) vs reservoir vs newest-overwrite,
* positional encoding: learned positions (default) vs Bochner time encoding.
"""

import pytest

from repro.utils import format_table

from .harness import bench_dataset, make_apan, train_dynamic_model

ABLATIONS = {
    "default (paper)": {},
    "phi=concat_project": {"mail_phi": "concat_project"},
    "rho=last": {"mail_rho": "last"},
    "rho=max": {"mail_rho": "max"},
    "sampling=uniform": {"sampling": "uniform"},
    "sampling=time_weighted": {"sampling": "time_weighted"},
    "mailbox=reservoir": {"mailbox_update": "reservoir"},
    "mailbox=newest_overwrite": {"mailbox_update": "newest_overwrite"},
    "positional=time_encoding": {"positional_encoding": "time"},
    "hops=1": {"num_hops": 1},
}


@pytest.fixture(scope="module")
def ablation_results():
    dataset = bench_dataset("wikipedia")
    results = {}
    for name, overrides in ABLATIONS.items():
        model = make_apan(dataset, **overrides)
        run = train_dynamic_model(name, model, dataset, epochs=3)
        results[name] = run.val_ap
    return results


def test_apan_design_ablations(ablation_results, benchmark):
    benchmark.pedantic(lambda: ablation_results, rounds=1, iterations=1)

    rows = [{"Variant": name, "val AP (%)": 100.0 * ap}
            for name, ap in sorted(ablation_results.items(),
                                   key=lambda item: -item[1])]
    print("\n=== Ablations over APAN design choices (Wikipedia-like) ===")
    print(format_table(rows))

    default_ap = ablation_results["default (paper)"]
    assert default_ap > 0.6, "the paper-default configuration should learn well"
    # Every variant remains a working model (the framework is robust to its
    # component choices, §3.6) — no variant collapses to random ranking.
    for name, ap in ablation_results.items():
        assert ap > 0.5, f"ablation {name!r} collapsed to chance"
    # The paper-default configuration is within a small margin of the best variant.
    best_ap = max(ablation_results.values())
    assert default_ap > best_ap - 0.12
