"""Table 2 — temporal link prediction (accuracy / AP) on Wikipedia and Reddit.

Trains APAN, the dynamic baselines (JODIE, DyRep, TGAT, TGN) and the static
baselines (GAE, VGAE, DeepWalk, Node2Vec, GAT, SAGE, CTDNE) on the benchmark-
scale synthetic stand-ins and prints the table in the paper's layout.

Shape expectations asserted (the paper's qualitative findings):
* dynamic CTDG models beat the static/walk-based methods,
* APAN is competitive with the best baseline (within a small margin of TGN).
"""

import pytest

from repro.utils import format_table

from .harness import (
    bench_dataset,
    dynamic_model_zoo,
    percent,
    run_static_baseline,
    static_model_zoo,
    train_dynamic_model,
)

DATASET_NAMES = ("wikipedia", "reddit")


@pytest.fixture(scope="module")
def table2_results():
    results: dict[str, dict[str, tuple[float, float]]] = {}
    for dataset_name in DATASET_NAMES:
        dataset = bench_dataset(dataset_name)
        per_method: dict[str, tuple[float, float]] = {}
        for name, model in static_model_zoo().items():
            ap, accuracy = run_static_baseline(name, model, dataset)
            per_method[name] = (ap, accuracy)
        for name, model in dynamic_model_zoo(dataset).items():
            run = train_dynamic_model(name, model, dataset)
            per_method[name] = (run.test_ap, run.test_accuracy)
        results[dataset_name] = per_method
    return results


def test_table2_link_prediction(table2_results, benchmark):
    benchmark.pedantic(lambda: table2_results, rounds=1, iterations=1)

    methods = list(table2_results[DATASET_NAMES[0]].keys())
    rows = []
    for method in methods:
        row = {"Method": method}
        for dataset_name in DATASET_NAMES:
            ap, accuracy = table2_results[dataset_name][method]
            row[f"{dataset_name} Acc (%)"] = percent(accuracy)
            row[f"{dataset_name} AP (%)"] = percent(ap)
        rows.append(row)
    print("\n=== Table 2: link prediction (benchmark-scale synthetic stand-ins) ===")
    print(format_table(rows))

    static_names = set(static_model_zoo().keys())
    for dataset_name in DATASET_NAMES:
        per_method = table2_results[dataset_name]
        best_static_ap = max(ap for name, (ap, _) in per_method.items()
                             if name in static_names)
        apan_ap = per_method["APAN"][0]
        tgn_ap = per_method["TGN"][0]

        # Dynamic beats static (the paper's Table 2 ordering).
        assert apan_ap > best_static_ap - 0.05, (
            f"APAN ({apan_ap:.3f}) should beat the best static baseline "
            f"({best_static_ap:.3f}) on {dataset_name}"
        )
        # APAN is competitive with TGN (paper: APAN within ~0.6 AP points of
        # TGN, winning on Reddit).  At bench scale the Reddit stand-in has only
        # ~10 items, so 2-hop mail propagation reaches almost the whole graph
        # and blurs APAN's mailboxes; allow a wider tolerance there (the
        # wikipedia stand-in stays within a few points).
        assert apan_ap > tgn_ap - 0.20, (
            f"APAN ({apan_ap:.3f}) should be competitive with TGN ({tgn_ap:.3f}) "
            f"on {dataset_name}"
        )
        # Everything should comfortably beat random ranking.
        assert apan_ap > 0.6
