"""Analytics maintenance is O(1) per event — flat in stream length.

The tentpole claim of ``repro.analytics``: incremental view maintenance
costs the same per event no matter how long the stream has been running.
The ring-of-buckets window clears at most ``num_buckets`` columns per
watermark advance (never walks stored events) and the velocity tracker's
fold is O(batch log batch); neither touches O(history) state.

This benchmark folds the same constant-rate workload at a base length and
at 10x the length (10x the events *and* 10x the time span, so the window
keeps expiring — the adversarial case for naive window implementations,
which must walk and evict every stored event) and asserts the measured
**per-event** maintenance cost at 10x stays within ``RATIO_CEILING`` (2x
by default) of the base run — flat, not linear.  Results land in
``BENCH_analytics.json`` at the repo root (see ``make bench-analytics``);
CI uploads the JSON and fails on a ratio regression.

Environment knobs::

    ANALYTICS_BENCH_EVENTS         base stream length   (default 20_000)
    ANALYTICS_BENCH_SCALE          long/base multiplier (default 10)
    ANALYTICS_BENCH_RATIO_CEILING  flatness guard       (default 2.0)
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from repro.analytics import (
    AnalyticsFeatureProvider,
    DegreeVelocity,
    TopKView,
    ViewRegistry,
    WindowAggregator,
)

from .harness import write_bench_record

BASE_EVENTS = int(os.environ.get("ANALYTICS_BENCH_EVENTS", 20_000))
SCALE = int(os.environ.get("ANALYTICS_BENCH_SCALE", 10))
RATIO_CEILING = float(os.environ.get("ANALYTICS_BENCH_RATIO_CEILING", 2.0))

NUM_NODES = 10_000
ADVANCE_CHUNK = 1_000     # events folded per ViewRegistry.advance
EVENT_RATE = 100.0        # events per time unit (constant: 10x events = 10x span)
WINDOW = 50.0             # time units -> 5_000 in-window events at this rate
NUM_BUCKETS = 16
REPS = 5                  # min-of-reps absorbs scheduler noise

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_analytics.json"


class _ArrayStore:
    """Pre-generated columns with the store duck type (no storage overhead)."""

    def __init__(self, num_events: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.src = rng.integers(0, NUM_NODES, num_events)
        self.dst = rng.integers(0, NUM_NODES, num_events)
        self.timestamps = np.arange(num_events, dtype=np.float64) / EVENT_RATE
        self.labels = (rng.random(num_events) < 0.05).astype(np.float64)
        self.num_nodes = NUM_NODES

    @property
    def num_events(self) -> int:
        return len(self.src)


def _maintenance_seconds(store: _ArrayStore) -> float:
    """Wall seconds to fold the whole stream through a fresh registry."""
    registry = ViewRegistry(store)
    registry.register("window", WindowAggregator(NUM_NODES, WINDOW,
                                                 num_buckets=NUM_BUCKETS))
    registry.register("velocity", DegreeVelocity(NUM_NODES))
    begin = time.perf_counter()
    for hi in range(ADVANCE_CHUNK, store.num_events + 1, ADVANCE_CHUNK):
        registry.advance(hi)
    elapsed = time.perf_counter() - begin
    assert registry.folded == store.num_events
    return elapsed


def _best_per_event_us(store: _ArrayStore) -> float:
    best = min(_maintenance_seconds(store) for _ in range(REPS))
    return best * 1e6 / store.num_events


def _lookup_rows_per_sec(store: _ArrayStore) -> float:
    provider = AnalyticsFeatureProvider(store, window=WINDOW,
                                        num_buckets=NUM_BUCKETS)
    provider.advance()

    class _Batch:  # the duck-typed slice lookup() reads
        src = store.src[:200]
        dst = store.dst[:200]

        def __len__(self):
            return 200

    batch = _Batch()
    queries = 200
    begin = time.perf_counter()
    for _ in range(queries):
        provider.lookup(batch)
    elapsed = time.perf_counter() - begin
    return queries * len(batch) / elapsed


def _topk_updates_per_sec(store: _ArrayStore) -> float:
    view = TopKView(10)
    scores = np.asarray(store.labels) + np.arange(store.num_events) * 1e-9
    begin = time.perf_counter()
    for lo in range(0, store.num_events, ADVANCE_CHUNK):
        view.update(store.dst[lo:lo + ADVANCE_CHUNK],
                    scores[lo:lo + ADVANCE_CHUNK])
    view.top()
    elapsed = time.perf_counter() - begin
    return store.num_events / elapsed


def test_analytics_maintenance_is_flat_in_stream_length():
    base_store = _ArrayStore(BASE_EVENTS)
    long_store = _ArrayStore(BASE_EVENTS * SCALE)

    # Interleave-friendly order: measure the long run first so any one-time
    # warmup (allocator growth, numpy dispatch) is not charged to it alone.
    _maintenance_seconds(base_store)  # warmup, discarded
    long_per_event_us = _best_per_event_us(long_store)
    base_per_event_us = _best_per_event_us(base_store)
    ratio = long_per_event_us / base_per_event_us

    lookup_rows = _lookup_rows_per_sec(base_store)
    topk_rate = _topk_updates_per_sec(base_store)

    registry = ViewRegistry(base_store)
    registry.register("window", WindowAggregator(NUM_NODES, WINDOW,
                                                 num_buckets=NUM_BUCKETS))
    registry.register("velocity", DegreeVelocity(NUM_NODES))
    registry.advance()

    record = {
        "workload": {
            "num_nodes": NUM_NODES, "base_events": BASE_EVENTS,
            "long_events": BASE_EVENTS * SCALE, "scale": SCALE,
            "advance_chunk": ADVANCE_CHUNK, "event_rate": EVENT_RATE,
            "window": WINDOW, "num_buckets": NUM_BUCKETS, "reps": REPS,
        },
        "base_per_event_us": round(base_per_event_us, 4),
        "long_per_event_us": round(long_per_event_us, 4),
        "per_event_ratio": round(ratio, 4),
        "ratio_ceiling": RATIO_CEILING,
        "lookup_rows_per_sec": round(lookup_rows, 1),
        "topk_updates_per_sec": round(topk_rate, 1),
        "view_state_bytes": registry.memory_footprint_bytes(),
    }
    write_bench_record(_RESULT_PATH, record)
    print(f"\nmaintenance: {base_per_event_us:.3f} us/event at {BASE_EVENTS:,} "
          f"events, {long_per_event_us:.3f} us/event at "
          f"{BASE_EVENTS * SCALE:,} (ratio {ratio:.2f}, ceiling {RATIO_CEILING})")
    print(f"lookup: {lookup_rows:12,.0f} feature rows/s")
    print(f"top-k:  {topk_rate:12,.0f} score updates/s")

    # The O(1)-maintenance guard: 10x the stream, same per-event cost.
    assert ratio <= RATIO_CEILING, (
        f"per-event maintenance cost grew {ratio:.2f}x from {BASE_EVENTS:,} "
        f"to {BASE_EVENTS * SCALE:,} events (ceiling {RATIO_CEILING}x) — "
        f"view maintenance is no longer O(1) per event"
    )
