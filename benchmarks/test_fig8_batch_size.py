"""Figure 8 — AP versus training/serving batch size.

The paper's robustness claim (§4.7): synchronous CTDG models (TGAT, TGN)
degrade as the batch size grows, because all events in a batch are assumed to
arrive simultaneously and the freshest interactions are lost; APAN, which by
design never sees the current batch's interactions at encoding time, is much
less sensitive.

This benchmark trains APAN, TGN and TGAT at several batch sizes on the
Wikipedia-like dataset and prints the AP-vs-batch-size series of Figure 8.
The batch sizes are scaled to the benchmark dataset (the paper uses 100-500 on
the full-size datasets).
"""

import pytest

from repro.baselines import TGAT, TGN
from repro.utils import format_table

from .harness import SEED, bench_dataset, make_apan, train_dynamic_model

BATCH_SIZES = (25, 50, 100, 200)


@pytest.fixture(scope="module")
def batch_size_sweep():
    dataset = bench_dataset("wikipedia")
    n, d = dataset.num_nodes, dataset.edge_feature_dim
    results: dict[str, dict[int, float]] = {"APAN": {}, "TGN": {}, "TGAT": {}}
    for batch_size in BATCH_SIZES:
        factories = {
            "APAN": lambda: make_apan(dataset, batch_size=batch_size),
            "TGN": lambda: TGN(n, d, num_layers=1, num_neighbors=10, seed=SEED),
            "TGAT": lambda: TGAT(n, d, num_layers=1, num_neighbors=10, seed=SEED),
        }
        for name, factory in factories.items():
            run = train_dynamic_model(name, factory(), dataset, epochs=3,
                                      batch_size=batch_size)
            results[name][batch_size] = run.val_ap
    return results


def test_fig8_batch_size_robustness(batch_size_sweep, benchmark):
    benchmark.pedantic(lambda: batch_size_sweep, rounds=1, iterations=1)

    rows = []
    for batch_size in BATCH_SIZES:
        row = {"Batch size": batch_size}
        for name in ("TGAT", "TGN", "APAN"):
            row[f"{name} AP (%)"] = 100.0 * batch_size_sweep[name][batch_size]
        rows.append(row)
    print("\n=== Figure 8: AP vs batch size (Wikipedia-like) ===")
    print(format_table(rows))

    def degradation(series: dict[int, float]) -> float:
        """AP lost going from the smallest to the largest batch size."""
        return series[BATCH_SIZES[0]] - series[BATCH_SIZES[-1]]

    apan_drop = degradation(batch_size_sweep["APAN"])
    tgn_drop = degradation(batch_size_sweep["TGN"])
    tgat_drop = degradation(batch_size_sweep["TGAT"])
    print(f"\nAP drop small->large batch: APAN {apan_drop:+.3f}, "
          f"TGN {tgn_drop:+.3f}, TGAT {tgat_drop:+.3f}")

    # APAN's degradation is no worse than the synchronous models' (allowing a
    # small tolerance for run-to-run noise at this scale).
    assert apan_drop <= max(tgn_drop, tgat_drop) + 0.05
    # APAN stays useful even at the largest batch size.
    assert batch_size_sweep["APAN"][BATCH_SIZES[-1]] > 0.55
