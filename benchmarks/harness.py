"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper.  The
datasets are the synthetic stand-ins from :mod:`repro.datasets.synthetic`,
generated at a small ``BENCH_SCALE`` so the whole harness runs in minutes on a
laptop CPU; the *shape* of each result (orderings, ratios, trends) is what is
asserted and what EXPERIMENTS.md records against the paper's numbers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.obs import run_metadata

from repro.baselines import (
    CTDNE,
    DeepWalk,
    DyRep,
    GAEBaseline,
    GATBaseline,
    GraphSAGEBaseline,
    JODIE,
    Node2Vec,
    TGAT,
    TGN,
    VGAEBaseline,
    evaluate_static_link_prediction,
    evaluate_static_node_classification,
)
from repro.core import APAN, APANConfig, LinkPredictionTrainer
from repro.datasets import TemporalDataset, get_dataset
from repro.eval import evaluate_node_classification, evaluate_edge_classification

# Scale of the synthetic datasets relative to the published sizes.  Kept small
# so `pytest benchmarks/ --benchmark-only` completes quickly; raise the scales
# (e.g. 10x) to run a heavier, closer-to-paper evaluation.
BENCH_SCALES = {"wikipedia": 0.01, "reddit": 0.003, "alipay": 0.0008}
BATCH_SIZE = 50
EPOCHS = 5
LEARNING_RATE = 2e-3
SEED = 0


def bench_dataset(name: str) -> TemporalDataset:
    """The benchmark-scale stand-in for one of the paper's datasets."""
    return get_dataset(name, scale=BENCH_SCALES[name])


def make_apan(dataset: TemporalDataset, num_hops: int = 2, **overrides) -> APAN:
    """APAN with paper-default hyper-parameters scaled for the bench datasets."""
    parameters = dict(
        num_mailbox_slots=10, num_neighbors=10, num_hops=num_hops,
        mlp_hidden_dim=80, dropout=0.0, learning_rate=LEARNING_RATE,
        batch_size=BATCH_SIZE, seed=SEED,
    )
    parameters.update(overrides)
    return APAN(dataset.num_nodes, dataset.edge_feature_dim, APANConfig(**parameters))


def dynamic_model_zoo(dataset: TemporalDataset) -> dict[str, object]:
    """The dynamic models compared throughout the evaluation."""
    n, d = dataset.num_nodes, dataset.edge_feature_dim
    return {
        "JODIE": JODIE(n, d, seed=SEED),
        "DyRep": DyRep(n, d, num_neighbors=10, seed=SEED),
        "TGAT": TGAT(n, d, num_layers=1, num_neighbors=10, seed=SEED),
        "TGN": TGN(n, d, num_layers=1, num_neighbors=10, seed=SEED),
        "APAN": make_apan(dataset),
    }


def static_model_zoo() -> dict[str, object]:
    """The static / walk-based baselines of Table 2."""
    return {
        "GAE": GAEBaseline(epochs=20, seed=SEED),
        "VGAE": VGAEBaseline(epochs=20, seed=SEED),
        "DeepWalk": DeepWalk(seed=SEED),
        "Node2Vec": Node2Vec(seed=SEED),
        "GAT": GATBaseline(epochs=20, seed=SEED),
        "SAGE": GraphSAGEBaseline(epochs=20, seed=SEED),
        "CTDNE": CTDNE(seed=SEED),
    }


@dataclass
class DynamicRunResult:
    """Link-prediction outcome of one dynamic model on one dataset."""

    name: str
    val_ap: float
    val_accuracy: float
    test_ap: float
    test_accuracy: float
    train_seconds_per_epoch: float
    model: object


def train_dynamic_model(name: str, model, dataset: TemporalDataset,
                        epochs: int = EPOCHS, batch_size: int = BATCH_SIZE,
                        learning_rate: float = LEARNING_RATE) -> DynamicRunResult:
    """Train a dynamic model on link prediction with the shared trainer."""
    split = dataset.split()
    graph = dataset.to_temporal_graph()
    trainer = LinkPredictionTrainer(
        model, graph, split.train_end, split.val_end,
        batch_size=batch_size, learning_rate=learning_rate,
        max_epochs=epochs, patience=epochs, seed=SEED,
    )
    outcome = trainer.fit()
    return DynamicRunResult(
        name=name,
        val_ap=outcome.best_val.average_precision,
        val_accuracy=outcome.best_val.accuracy,
        test_ap=outcome.test_at_best.average_precision,
        test_accuracy=outcome.test_at_best.accuracy,
        train_seconds_per_epoch=outcome.train_seconds_per_epoch,
        model=model,
    )


def run_static_baseline(name: str, model, dataset: TemporalDataset):
    """Fit + evaluate a static baseline; returns (ap, accuracy)."""
    split = dataset.split()
    model.fit(dataset, split)
    result = evaluate_static_link_prediction(model, dataset, split, batch_size=BATCH_SIZE)
    return result.average_precision, result.accuracy


def node_classification_auc(model, dataset: TemporalDataset) -> float:
    split = dataset.split()
    return evaluate_node_classification(model, dataset, split, epochs=10,
                                        batch_size=BATCH_SIZE, seed=SEED).test_auc


def edge_classification_auc(model, dataset: TemporalDataset) -> float:
    split = dataset.split()
    return evaluate_edge_classification(model, dataset, split, epochs=10,
                                        batch_size=BATCH_SIZE, seed=SEED).test_auc


def static_node_classification_auc(model, dataset: TemporalDataset) -> float:
    split = dataset.split()
    return evaluate_static_node_classification(model, dataset, split, seed=SEED)


def percent(value: float) -> float:
    """Convert a [0, 1] metric to the percentage form the paper's tables use."""
    return 100.0 * value


def write_bench_record(path: str | Path, record: dict) -> Path:
    """Write a BENCH_*.json result, stamped with run provenance.

    Every benchmark result ships with ``record["provenance"]`` (git sha +
    dirty flag, UTC timestamp, hostname, interpreter and NumPy versions) so
    two BENCH files are always comparable: same commit, or knowably not.
    """
    record = dict(record)
    record["provenance"] = run_metadata()
    path = Path(path)
    path.write_text(json.dumps(record, indent=2) + "\n")
    return path
