"""Figure 9 — AP grid over (number of sampled neighbours) x (mailbox slots).

The paper sweeps both hyper-parameters over {5, 10, 15, 20} on Wikipedia and
finds the AP fluctuates by only ~0.6 points: APAN is robust to its two main
hyper-parameters.  This benchmark reproduces the grid at benchmark scale and
asserts the same flatness property (with a wider tolerance because the
dataset is far smaller).
"""

import numpy as np
import pytest

from repro.utils import format_grid

from .harness import bench_dataset, make_apan, train_dynamic_model

GRID_VALUES = (5, 10, 15, 20)


@pytest.fixture(scope="module")
def mailbox_grid():
    dataset = bench_dataset("wikipedia")
    grid: dict[tuple, float] = {}
    for num_neighbors in GRID_VALUES:
        for num_slots in GRID_VALUES:
            model = make_apan(dataset, num_mailbox_slots=num_slots,
                              num_neighbors=num_neighbors)
            run = train_dynamic_model(f"apan-{num_neighbors}-{num_slots}", model,
                                      dataset, epochs=3)
            grid[(num_neighbors, num_slots)] = run.val_ap
    return grid


def test_fig9_mailbox_and_neighbor_grid(mailbox_grid, benchmark):
    benchmark.pedantic(lambda: mailbox_grid, rounds=1, iterations=1)

    as_percent = {key: 100.0 * value for key, value in mailbox_grid.items()}
    print("\n=== Figure 9: AP (%) over sampled-neighbours x mailbox-slots "
          "(Wikipedia-like) ===")
    print(format_grid(as_percent, row_labels=list(GRID_VALUES),
                      col_labels=list(GRID_VALUES),
                      row_name="neighbors", col_name="slots"))

    values = np.array(list(mailbox_grid.values()))
    spread = values.max() - values.min()
    print(f"\nbest-worst AP spread: {100 * spread:.2f} points "
          "(paper reports 0.6 points at full scale)")

    # Robustness: every cell performs well and the spread is bounded.  (At
    # full scale the paper reports a 0.6-point spread; at bench scale 3-epoch
    # training noise dominates, so the band is wider.)
    assert values.min() > 0.55, "APAN should not collapse for any grid setting"
    assert spread < 0.18, "APAN should be robust to mailbox/neighbour settings"
