"""Telemetry overhead benchmark: instrumented vs. null-sink serving throughput.

Observability is only free if it stays off the decision path.  This
benchmark streams the same workload through the real multi-process runtime
twice per repetition — once with ``RuntimeConfig(telemetry=False)`` (the
``NULL_TELEMETRY`` no-op sink) and once with full shared-memory telemetry,
alternating the order — and asserts the overhead is under
``OBS_BENCH_MAX_OVERHEAD_PCT`` (default 5%).

The guarded estimate is the **minimum over repetitions of the within-pair
wall-time ratio**: pairing adjacent runs cancels slow drift in machine load
(thermal, neighbours, page cache), and taking the minimum rejects transient
spikes that hit a single run.  A genuine regression — telemetry code that
always costs, say, 20% — inflates *every* pair's ratio and still fails the
gate; one noisy repetition does not.  The raw per-mode walls (and their
min) are recorded in ``BENCH_obs.json`` for eyeballing.

The instrumented run's Chrome trace is exported to ``TRACE_serving.json`` at
the repo root (load it in ``chrome://tracing`` / Perfetto; uploaded as a CI
artifact), and the measured overhead goes to ``BENCH_obs.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.analytics import AnalyticsFeatureProvider
from repro.core import APAN, APANConfig
from repro.datasets import bipartite_interaction_dataset
from repro.serving import DeploymentSimulator, RuntimeConfig, StorageLatencyModel

from .harness import write_bench_record

NUM_EVENTS = int(os.environ.get("OBS_BENCH_EVENTS", "24000"))
MAX_OVERHEAD_PCT = float(os.environ.get("OBS_BENCH_MAX_OVERHEAD_PCT", "5.0"))
BATCH_SIZE = 100
NUM_WORKERS = 2
MAX_BACKLOG = 4
REPS = int(os.environ.get("OBS_BENCH_REPS", "5"))

_ROOT = Path(__file__).resolve().parent.parent
_RESULT_PATH = _ROOT / "BENCH_obs.json"
_TRACE_PATH = _ROOT / "TRACE_serving.json"


def _runtime_config(telemetry: bool) -> RuntimeConfig:
    return RuntimeConfig(num_workers=NUM_WORKERS, max_backlog=MAX_BACKLOG,
                         worker_nice=19, telemetry=telemetry)


@pytest.fixture(scope="module")
def measurements():
    dataset = bipartite_interaction_dataset(
        name="obs-bench", num_users=NUM_EVENTS // 8, num_items=NUM_EVENTS // 16,
        num_events=NUM_EVENTS, edge_feature_dim=16, seed=23,
    )
    graph = dataset.to_temporal_graph()
    model = APAN(dataset.num_nodes, dataset.edge_feature_dim,
                 APANConfig(seed=0, dropout=0.0))
    storage = StorageLatencyModel(graph_query_ms=0.0, kv_read_ms=0.0,
                                  jitter=0.0, seed=0)
    simulator = DeploymentSimulator(model, graph, storage=storage,
                                    batch_size=BATCH_SIZE)

    window = float(graph.timestamps[-1] - graph.timestamps[0]) / 4 or 1.0

    walls = {False: [], True: []}
    telemetry = None
    for rep in range(REPS):
        # Alternate the order so drift (thermal, page cache, neighbours)
        # never consistently favours one mode.
        order = (False, True) if rep % 2 == 0 else (True, False)
        for instrumented in order:
            model.reset_state()
            # Fresh feature store per run: both modes pay the identical
            # lookup/advance work, and the instrumented run's trace shows
            # the features.* spans of a full fold, not idempotent no-ops.
            simulator.feature_provider = AnalyticsFeatureProvider(
                graph, window=window)
            begin = time.perf_counter()
            simulator.run(mode="asynchronous-real",
                          runtime_config=_runtime_config(instrumented))
            walls[instrumented].append(time.perf_counter() - begin)
            if instrumented:
                telemetry = simulator.last_telemetry
    return walls, telemetry


def test_telemetry_overhead_under_budget(measurements):
    walls, _ = measurements
    null_wall = min(walls[False])
    instrumented_wall = min(walls[True])
    pair_ratios = [instr / null
                   for instr, null in zip(walls[True], walls[False])]
    overhead_pct = 100.0 * (min(pair_ratios) - 1.0)

    record = {
        "workload": {
            "num_events": NUM_EVENTS, "batch_size": BATCH_SIZE,
            "num_workers": NUM_WORKERS, "max_backlog": MAX_BACKLOG,
            "reps": REPS,
        },
        "overhead_pct": round(overhead_pct, 2),
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "pair_ratios": [round(r, 4) for r in pair_ratios],
        "null_sink_wall_s": round(null_wall, 3),
        "instrumented_wall_s": round(instrumented_wall, 3),
        "null_sink_walls_s": [round(w, 3) for w in walls[False]],
        "instrumented_walls_s": [round(w, 3) for w in walls[True]],
    }
    write_bench_record(_RESULT_PATH, record)
    print(f"\nnull sink:    best of {REPS} = {null_wall:.3f} s")
    print(f"instrumented: best of {REPS} = {instrumented_wall:.3f} s")
    print(f"min paired overhead over {REPS} reps: {overhead_pct:+.2f}%")

    assert overhead_pct < MAX_OVERHEAD_PCT, (
        f"telemetry overhead {overhead_pct:.2f}% exceeds the "
        f"{MAX_OVERHEAD_PCT:.1f}% budget in every one of {REPS} paired "
        f"repetitions (ratios: {[round(r, 3) for r in pair_ratios]})"
    )


def test_trace_export_is_valid_chrome_trace(measurements):
    _, telemetry = measurements
    assert telemetry is not None and telemetry.enabled
    telemetry.write_chrome_trace(_TRACE_PATH, metadata={
        "workload": f"{NUM_EVENTS} events x {BATCH_SIZE} batch, "
                    f"{NUM_WORKERS} workers"})
    document = json.loads(_TRACE_PATH.read_text())
    events = document["traceEvents"]
    assert document["displayTimeUnit"] == "ms"
    span_names = {e["name"] for e in events if e.get("ph") == "X"}
    for required in ("scorer.decision", "scorer.submit", "queue.ride",
                     "worker.propagate", "worker.apply", "store.append",
                     "features.lookup", "features.advance"):
        assert required in span_names, f"missing {required} spans in trace"
    worker_pids = {e["pid"] for e in events
                   if e["name"] == "worker.propagate" and e.get("ph") == "X"}
    assert len(worker_pids) >= 2, "expected spans from >= 2 worker processes"
