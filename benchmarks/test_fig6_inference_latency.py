"""Figure 6 — inference time (ms per batch) versus AP.

Regenerates the latency axis of Figure 6: the per-batch critical-path
inference latency of APAN (1 and 2 propagation hops), TGAT (1/2 layers),
TGN (1/2 layers), JODIE and DyRep, streaming the Wikipedia-like dataset.

Shape expectations (the paper's headline efficiency claims):
* APAN's inference is several times faster than TGN's and TGAT's;
* APAN's latency is flat in the number of propagation layers (hops), whereas
  TGAT's and TGN's latency grows with the number of layers;
* JODIE is also fast (no graph query) but pays for it in accuracy (Table 2).
"""

import pytest

from repro.baselines import DyRep, JODIE, TGAT, TGN
from repro.eval import measure_inference_latency
from repro.utils import format_table

from .harness import BATCH_SIZE, SEED, bench_dataset, make_apan


@pytest.fixture(scope="module")
def latency_results():
    dataset = bench_dataset("wikipedia")
    graph = dataset.to_temporal_graph()
    n, d = dataset.num_nodes, dataset.edge_feature_dim
    models = {
        "APAN-1layer": make_apan(dataset, num_hops=1),
        "APAN-2layers": make_apan(dataset, num_hops=2),
        "JODIE": JODIE(n, d, seed=SEED),
        "DyRep": DyRep(n, d, num_neighbors=10, seed=SEED),
        "TGN-1layer": TGN(n, d, num_layers=1, num_neighbors=10, seed=SEED),
        "TGN-2layers": TGN(n, d, num_layers=2, num_neighbors=10, seed=SEED),
        "TGAT-1layer": TGAT(n, d, num_layers=1, num_neighbors=10, seed=SEED),
        "TGAT-2layers": TGAT(n, d, num_layers=2, num_neighbors=10, seed=SEED),
    }
    results = {}
    for name, model in models.items():
        results[name] = measure_inference_latency(
            model, graph, batch_size=BATCH_SIZE, max_batches=8, seed=SEED
        )
    return results


def test_fig6_inference_latency(latency_results, benchmark):
    benchmark.pedantic(lambda: latency_results, rounds=1, iterations=1)

    rows = [
        {"Model": name, "mean ms/batch": result.mean_ms,
         "median ms/batch": result.median_ms, "p95 ms/batch": result.p95_ms}
        for name, result in sorted(latency_results.items(),
                                   key=lambda item: item[1].mean_ms)
    ]
    print("\n=== Figure 6: critical-path inference latency per batch "
          f"(batch size {BATCH_SIZE}) ===")
    print(format_table(rows))

    apan1 = latency_results["APAN-1layer"].mean_ms
    apan2 = latency_results["APAN-2layers"].mean_ms
    tgn1 = latency_results["TGN-1layer"].mean_ms
    tgn2 = latency_results["TGN-2layers"].mean_ms
    tgat1 = latency_results["TGAT-1layer"].mean_ms
    tgat2 = latency_results["TGAT-2layers"].mean_ms

    # APAN is substantially faster than the synchronous models (paper: 8.7x vs TGN).
    assert apan2 < tgn1, "APAN should be faster than TGN-1layer"
    assert apan2 < tgat1, "APAN should be faster than TGAT-1layer"
    speedup_vs_tgn2 = tgn2 / apan2
    print(f"\nAPAN-2layers speed-up over TGN-2layers: {speedup_vs_tgn2:.1f}x "
          "(paper reports 8.7x on GPU)")
    assert speedup_vs_tgn2 > 2.0

    # APAN latency is flat in the number of propagation hops; TGAT/TGN grow.
    assert apan2 < apan1 * 1.6, "APAN latency should not grow with propagation hops"
    assert tgat2 > tgat1 * 1.5, "TGAT latency should grow sharply with layers"
    assert tgn2 > tgn1 * 1.5, "TGN latency should grow sharply with layers"
