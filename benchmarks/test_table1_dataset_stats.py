"""Table 1 — dataset statistics.

Regenerates the statistics table (edges, nodes, feature dims, train/eval node
populations, timespan, label counts) for the three datasets.  The synthetic
stand-ins are generated at ``BENCH_SCALE``; the asserted *shape* properties
are the ones the rest of the evaluation relies on: Wikipedia-like has a large
unseen-node population, Reddit-like has almost none, Alipay-like is a
non-bipartite edge-labelled transaction graph over 14 days.
"""

import pytest

from repro.datasets import compute_statistics, statistics_table

from .harness import bench_dataset


@pytest.fixture(scope="module")
def datasets():
    return [bench_dataset(name) for name in ("wikipedia", "reddit", "alipay")]


def test_table1_dataset_statistics(datasets, benchmark):
    stats = benchmark.pedantic(
        lambda: [compute_statistics(d) for d in datasets], rounds=1, iterations=1
    )
    print("\n=== Table 1: dataset statistics (benchmark-scale synthetic stand-ins) ===")
    print(statistics_table(datasets))

    by_name = {s.name: s for s in stats}
    wikipedia, reddit, alipay = by_name["wikipedia"], by_name["reddit"], by_name["alipay"]

    # Feature dimensions and label kinds match the paper exactly.
    assert wikipedia.edge_feature_dim == 172
    assert reddit.edge_feature_dim == 172
    assert alipay.edge_feature_dim == 101
    assert wikipedia.label_kind == "node"
    assert alipay.label_kind == "edge"

    # Timespans: 30 days for the JODIE datasets, 14 days for Alipay.
    assert wikipedia.timespan_days == pytest.approx(30.0, rel=0.05)
    assert reddit.timespan_days == pytest.approx(30.0, rel=0.05)
    assert alipay.timespan_days == pytest.approx(14.0, rel=0.05)

    # Inductive structure: Wikipedia has a much larger unseen-node share than Reddit.
    wiki_unseen = wikipedia.unseen_nodes_in_eval / max(
        wikipedia.unseen_nodes_in_eval + wikipedia.old_nodes_in_eval, 1)
    reddit_unseen = reddit.unseen_nodes_in_eval / max(
        reddit.unseen_nodes_in_eval + reddit.old_nodes_in_eval, 1)
    assert wiki_unseen > reddit_unseen

    # Label sparsity: labelled interactions are a small fraction of all events.
    for stat in stats:
        assert 0 < stat.num_labeled < 0.05 * stat.num_edges

    # Bipartite structure: Wikipedia/Reddit users never appear as items.
    assert wikipedia.num_nodes > 0 and alipay.num_nodes > 0
