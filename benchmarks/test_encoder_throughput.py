"""Encoder engine throughput: vectorized vs. reference.

After PR 1 moved mail routing to whole-frontier array ops, the encoder was
the last per-event Python loop on the hot path.  The vectorized encoder
engine removes it: one masked multi-head-attention / LayerNorm / MLP pass
covers a whole batch of nodes (see
:meth:`repro.core.encoder.APANEncoder.encode_many`).  This benchmark streams
a synthetic 10k-encode workload — pre-filled mailboxes, paper-default
dimensions (10 slots, 2 heads, batch 200) — through both engines under
``no_grad`` and asserts the speedup floor that future PRs must not regress
below.  The measured numbers are written to ``BENCH_encoder.json`` at the
repo root so the perf trajectory is recorded alongside the code (see
``make bench``).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.encoder import APANEncoder
from repro.core.mailbox import Mailbox
from repro.nn.tensor import Tensor, no_grad

from .harness import write_bench_record

NUM_ENCODES = 10_000
NUM_NODES = 2_000
FEATURE_DIM = 16
NUM_SLOTS = 10
BATCH_SIZE = 200
# Measured locally: reference ~3k encodes/s, vectorized ~200k encodes/s
# (>60x).  The floor is deliberately far below the measured ratio so CI noise
# cannot flake, while still failing if the fast path ever degenerates to
# per-node work.
MIN_SPEEDUP = 3.0

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_encoder.json"


def prefilled_mailbox(seed: int = 0) -> Mailbox:
    """A mailbox warmed with a few deliveries per node (mixed occupancy)."""
    rng = np.random.default_rng(seed)
    mailbox = Mailbox(NUM_NODES, NUM_SLOTS, FEATURE_DIM)
    for _ in range(3):
        nodes = rng.permutation(NUM_NODES)[: NUM_NODES // 2].astype(np.int64)
        mailbox.deliver(nodes, rng.normal(size=(len(nodes), FEATURE_DIM)),
                        np.sort(rng.uniform(0.0, 1_000.0, len(nodes))))
    return mailbox


def measure_encodes_per_second(engine: str) -> float:
    rng = np.random.default_rng(1)
    mailbox = prefilled_mailbox()
    encoder = APANEncoder(embedding_dim=FEATURE_DIM, num_slots=NUM_SLOTS,
                          num_heads=2, hidden_dim=80, dropout=0.0,
                          engine=engine, rng=np.random.default_rng(0))
    encoder.eval()
    node_state = rng.normal(size=(NUM_NODES, FEATURE_DIM))
    batches = [rng.integers(0, NUM_NODES, BATCH_SIZE).astype(np.int64)
               for _ in range(NUM_ENCODES // BATCH_SIZE)]
    gathers = [mailbox.gather_many(nodes) for nodes in batches]

    begin = time.perf_counter()
    with no_grad():
        for gather in gathers:
            encoder.encode_many(Tensor(node_state[gather.nodes]),
                                gather.mails, gather.times, gather.valid,
                                current_time=1_000.0)
    elapsed = time.perf_counter() - begin
    return NUM_ENCODES / elapsed


@pytest.fixture(scope="module")
def throughput():
    return {engine: measure_encodes_per_second(engine)
            for engine in ("reference", "vectorized")}


def test_encoder_throughput(throughput):
    reference = throughput["reference"]
    vectorized = throughput["vectorized"]
    speedup = vectorized / reference
    record = {
        "workload": {
            "num_encodes": NUM_ENCODES, "num_nodes": NUM_NODES,
            "feature_dim": FEATURE_DIM, "batch_size": BATCH_SIZE,
            "num_slots": NUM_SLOTS, "num_heads": 2,
        },
        "reference_encodes_per_sec": round(reference, 1),
        "vectorized_encodes_per_sec": round(vectorized, 1),
        "speedup": round(speedup, 2),
        "min_speedup_asserted": MIN_SPEEDUP,
    }
    write_bench_record(_RESULT_PATH, record)
    print(f"\nreference:  {reference:10,.0f} encodes/s")
    print(f"vectorized: {vectorized:10,.0f} encodes/s  ({speedup:.1f}x)")
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized encoder is only {speedup:.2f}x the reference "
        f"(floor {MIN_SPEEDUP}x) — the fast path has regressed"
    )
