"""Scenario-matrix benchmark: every model over every hostile stream.

Runs the :class:`repro.scenarios.ScenarioMatrix` — APAN vs the JODIE and TGN
baselines across the four adversarial scenarios (``bursty``, ``hubs``,
``drift``, ``late``) in both simulated serving modes, under a ``fold-late``
watermark policy — and writes the full record to ``BENCH_scenarios.json``
at the repo root with :mod:`repro.obs` provenance (see
``make bench-scenarios``).

The guard asserts the matrix is *complete*: at least 4 scenarios x 3 models
with no missing cells, every cell accounted (decisions served, rows folded),
and the late-event accounting consistent with the declared scenario specs.
Per-cell results are cached under ``SCENARIO_BENCH_CACHE`` (keyed by
scenario fingerprint + model + mode + policy), so local re-runs only pay
for new cells; CI runs cold.  ``SCENARIO_BENCH_EVENTS`` scales the streams
(default 600 events per scenario — the CI size).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.analytics import WatermarkPolicy
from repro.scenarios import MATRIX_SCENARIOS, ScenarioMatrix

from .harness import write_bench_record

NUM_EVENTS = int(os.environ.get("SCENARIO_BENCH_EVENTS", "600"))
BATCH_SIZE = 50
ALLOWED_LATENESS = 6000.0  # stream seconds; covers the late scenario's bound

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"


def _scenarios() -> dict:
    scenarios = {}
    for name, kwargs in MATRIX_SCENARIOS.items():
        kwargs = dict(kwargs)
        scale = NUM_EVENTS / kwargs["num_events"]
        kwargs["num_events"] = NUM_EVENTS
        kwargs["num_nodes"] = max(40, int(round(kwargs["num_nodes"] * scale)))
        scenarios[name] = kwargs
    return scenarios


@pytest.fixture(scope="module")
def record():
    cache_dir = os.environ.get("SCENARIO_BENCH_CACHE")
    matrix = ScenarioMatrix(
        scenarios=_scenarios(),
        policy=WatermarkPolicy.fold_late(ALLOWED_LATENESS),
        batch_size=BATCH_SIZE,
        cache_dir=cache_dir,
    )
    out = matrix.run()
    path = write_bench_record(_RESULT_PATH, out)
    # Assert on what was actually written (provenance stamped on write).
    return json.loads(path.read_text())


def test_matrix_is_complete(record):
    coverage = record["coverage"]
    assert coverage["num_scenarios"] >= 4, "matrix must cover >= 4 scenarios"
    assert coverage["num_models"] >= 3, "matrix must compare >= 3 models"
    assert coverage["num_modes"] >= 2, "matrix must cover >= 2 serving modes"
    assert coverage["missing"] == [], (
        f"matrix has holes: {coverage['missing']}")
    assert coverage["num_cells"] == (coverage["num_scenarios"]
                                     * coverage["num_models"]
                                     * coverage["num_modes"])
    assert "APAN" in record["models"]
    assert record["provenance"]["git_sha"]


def test_every_cell_served_the_whole_stream(record):
    for key, cell in record["cells"].items():
        assert cell["num_decisions"] == NUM_EVENTS, key
        assert cell["rows_folded"] == NUM_EVENTS, key
        assert cell["mean_decision_ms"] > 0.0, key
        assert cell["watermark_policy"] == record["watermark_policy"], key


def test_late_accounting_matches_declared_specs(record):
    specs = record["scenarios"]
    # In-order scenarios never produce late events; the late scenario's
    # realised count is declared in its spec, and fold-late admits all of
    # them because the allowance covers the declared bound.
    assert specs["late"]["invariants"]["max_lateness"] <= ALLOWED_LATENESS
    for key, cell in record["cells"].items():
        expected = (specs["late"]["invariants"]["num_late"]
                    if cell["scenario"] == "late" else 0)
        assert cell["late_admitted"] == expected, key
        assert cell["late_dropped"] == 0, key


def test_matrix_caches_cells(record, tmp_path):
    matrix = ScenarioMatrix(
        scenarios={"late": _scenarios()["late"]},
        policy=WatermarkPolicy.fold_late(ALLOWED_LATENESS),
        batch_size=BATCH_SIZE, cache_dir=tmp_path,
    )
    cold = matrix.run()
    assert cold["coverage"]["cache_hits"] == 0
    warm = matrix.run()
    assert warm["coverage"]["cache_hits"] == warm["coverage"]["num_cells"]
    for key, cell in warm["cells"].items():
        assert cell["cached"], key
        fresh = {k: v for k, v in cold["cells"][key].items() if k != "cached"}
        reloaded = {k: v for k, v in cell.items() if k != "cached"}
        assert fresh == reloaded, key
    # A different policy must miss the cache: the key covers the policy.
    other = ScenarioMatrix(
        scenarios={"late": _scenarios()["late"]},
        policy=WatermarkPolicy.drop(),
        batch_size=BATCH_SIZE, cache_dir=tmp_path,
    ).run()
    assert other["coverage"]["cache_hits"] == 0
