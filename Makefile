PYTHON ?= python

.PHONY: test test-fast equivalence bench bench-serving bench-storage \
	bench-obs bench-analytics bench-scenarios trace docs-check

## Tier-1: the full suite (unit tests + paper benchmarks), as CI runs it.
test:
	$(PYTHON) -m pytest -x -q

## Unit tests only (seconds, not minutes).
test-fast:
	$(PYTHON) -m pytest -q tests/

## Prove the vectorized propagation + encoder engines match their reference
## engines.
equivalence:
	$(PYTHON) -m pytest -q tests/core/test_propagation_equivalence.py \
		tests/core/test_encoder_equivalence.py tests/property/

## Measure both engine pairs (propagation and encoder) on the 10k-event
## synthetic stream and write BENCH_propagation.json / BENCH_encoder.json
## (the perf trajectory future PRs compare to).
bench:
	$(PYTHON) -m pytest -q benchmarks/test_propagation_throughput.py \
		benchmarks/test_encoder_throughput.py -s

## Stream a sustained-rate workload through the real multi-process serving
## runtime and through forced-synchronous propagation; write
## BENCH_serving.json and assert the async p99 < sync p99 floor.
## SERVING_BENCH_EVENTS=100000 scales the stream for a local soak.
bench-serving:
	$(PYTHON) -m pytest -q benchmarks/test_serving_throughput.py -s

## Build a 1M-node / 10M-event stream through the mmap-backed EventStore,
## measure append/slice/query throughput and peak RSS in a fresh subprocess,
## write BENCH_storage.json and assert the RSS ceiling.
## STORAGE_BENCH_EVENTS / STORAGE_BENCH_NODES / STORAGE_BENCH_RSS_MB scale it.
bench-storage:
	$(PYTHON) -m pytest -q benchmarks/test_storage_scale.py -s

## Measure telemetry overhead (instrumented vs. null-sink serving walls,
## min paired ratio over OBS_BENCH_REPS reps); write BENCH_obs.json and
## TRACE_serving.json and assert overhead < OBS_BENCH_MAX_OVERHEAD_PCT (5%).
bench-obs:
	$(PYTHON) -m pytest -q benchmarks/test_obs_overhead.py -s

## Fold a constant-rate stream through the analytics views at 1x and 10x
## length, write BENCH_analytics.json and assert the per-event maintenance
## cost stays flat (O(1) per event, <= ANALYTICS_BENCH_RATIO_CEILING, 2x).
## ANALYTICS_BENCH_EVENTS / ANALYTICS_BENCH_SCALE scale the workload.
bench-analytics:
	$(PYTHON) -m pytest -q benchmarks/test_analytics_throughput.py -s

## Serve APAN vs the JODIE/TGN baselines over every hostile scenario
## (bursty / hubs / drift / late) in both simulated modes under a fold-late
## watermark policy; write BENCH_scenarios.json and assert the matrix has
## no missing cells.  SCENARIO_BENCH_EVENTS scales the streams;
## SCENARIO_BENCH_CACHE=<dir> caches per-cell results across re-runs.
bench-scenarios:
	$(PYTHON) -m pytest -q benchmarks/test_scenario_matrix.py -s

## Run a telemetry-enabled serving workload and export trace.json — open it
## in chrome://tracing or https://ui.perfetto.dev to see every pipeline span.
trace:
	PYTHONPATH=src $(PYTHON) examples/trace_serving.py

## Verify every file path referenced by README.md / docs/ resolves.
docs-check:
	$(PYTHON) -m pytest -q tests/test_docs_links.py
