PYTHON ?= python

.PHONY: test test-fast equivalence bench

## Tier-1: the full suite (unit tests + paper benchmarks), as CI runs it.
test:
	$(PYTHON) -m pytest -x -q

## Unit tests only (seconds, not minutes).
test-fast:
	$(PYTHON) -m pytest -q tests/

## Prove the vectorized propagation engine matches the reference engine.
equivalence:
	$(PYTHON) -m pytest -q tests/core/test_propagation_equivalence.py tests/property/

## Measure both propagation engines on the 10k-event synthetic stream and
## write BENCH_propagation.json (the perf trajectory future PRs compare to).
bench:
	$(PYTHON) -m pytest -q benchmarks/test_propagation_throughput.py -s
